// Update front-end: a thread-safe mutation queue that coalesces
// pending operations before they reach the shards.
//
// Clients get a ticket per insertion and erase by ticket, so an edge's
// identity is stable from the moment it is enqueued even though the
// shard-level handle only exists after the flush that applies it.
// Coalescing rules, applied under the queue lock:
//
//   - erase(t) while insert(t) is still pending annihilates both (the
//     edge never existed as far as the shards are concerned) — the
//     common churn pattern of short-lived edges costs zero shard work;
//   - a second erase of the same pending ticket is dropped;
//   - insert tickets are unique, so inserts never merge.
//
// drain() hands the writer everything pending in one atomic cut. An
// erase can therefore only reference a ticket applied by an *earlier*
// epoch: an insert/erase pair inside one cut has already annihilated.
//
// The queue also keeps a (u, v) -> tickets ledger of every insertion
// not yet erased (it survives drains), so callers can erase by
// endpoints instead of retaining tickets; a multi-edge erases its most
// recently inserted copy first.
//
// Dirty-set capture: queued erases carry the endpoints the ledger
// resolved at enqueue time, so a drained batch can report exactly which
// shards (and whether the cross table) applying it will touch.
// Annihilated insert/erase pairs are gone before the drain and
// contribute nothing — the tests pin that invariant down, since it is
// what keeps churn-only traffic invisible to the epoch plane.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/epoch.hpp"
#include "engine/stats.hpp"
#include "graph/types.hpp"

namespace dynsld::engine {

/// Stable identity of one enqueued insertion; the erase key.
using ticket_t = uint64_t;
inline constexpr ticket_t kNoTicket = static_cast<ticket_t>(-1);

/// The coalescing update queue between clients and the flush path (see
/// the header comment). All public methods are thread-safe.
class MutationQueue {
 public:
  /// A pending insertion as the flush consumes it.
  struct InsertOp {
    ticket_t ticket;
    vertex_id u, v;
    double w;
  };

  /// A pending erase as the flush consumes it.
  struct EraseOp {
    ticket_t ticket;
    // Endpoints resolved through the ledger at enqueue time (kNoVertex
    // pair when the ticket was never inserted through this queue), so
    // the flush knows which shard an erase lands in without resolving
    // the shard-level handle first.
    vertex_id u = kNoVertex, v = kNoVertex;
  };

  /// Which shards — and whether the cross table — applying a batch will
  /// touch (the set of per-shard structures the next epoch rebuilds).
  struct BatchDirty {
    std::vector<char> shards;
    bool cross = false;

    bool any() const {
      for (char c : shards)
        if (c) return true;
      return cross;
    }
  };

  /// One atomic cut of everything pending, handed to the flush.
  struct Drained {
    std::vector<InsertOp> inserts;  // enqueue order
    std::vector<EraseOp> erases;    // enqueue order, deduplicated
    size_t size() const { return inserts.size() + erases.size(); }
    bool empty() const { return inserts.empty() && erases.empty(); }

    /// The dirty set this batch implies under `map`. Erases whose
    /// ticket never went through the queue have unknown endpoints and
    /// are skipped (the router counts them as invalid at apply).
    BatchDirty dirty_set(const ShardMap& map) const {
      BatchDirty d;
      d.shards.assign(map.num_shards, 0);
      auto touch = [&](vertex_id u, vertex_id v) {
        if (map.intra(u, v))
          d.shards[map.home(u)] = 1;
        else
          d.cross = true;
      };
      for (const InsertOp& op : inserts) touch(op.u, op.v);
      for (const EraseOp& op : erases)
        if (op.u != kNoVertex) touch(op.u, op.v);
      return d;
    }
  };

  explicit MutationQueue(EngineStats* stats = nullptr) : stats_(stats) {}

  ticket_t enqueue_insert(vertex_id u, vertex_id v, double w) {
    std::lock_guard<std::mutex> lk(mu_);
    ticket_t t = next_ticket_++;
    pending_pos_[t] = inserts_.size();
    inserts_.push_back(InsertOp{t, u, v, w});
    ++live_inserts_;
    uint64_t k = endpoint_key(u, v);
    by_endpoints_[k].push_back(t);
    key_of_[t] = k;
    if (stats_) stats_->inserts_enqueued.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  /// Returns false when the erase annihilated a pending insert (nothing
  /// will reach the shards), true when it was queued for the next flush.
  bool enqueue_erase(ticket_t t) {
    std::lock_guard<std::mutex> lk(mu_);
    return erase_locked(t);
  }

  /// Erase by endpoints: resolves (u, v) through the ledger to the most
  /// recently inserted live copy of that edge and erases it. Returns
  /// false when no live insertion of (u, v) is known.
  bool enqueue_erase(vertex_id u, vertex_id v) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = by_endpoints_.find(endpoint_key(u, v));
    if (it == by_endpoints_.end()) {
      // Nothing was enqueued, so neither erases_enqueued (an accepted
      // erase) nor duplicate_erases (a repeated ticket) applies; misses
      // get their own counter.
      if (stats_)
        stats_->erase_ledger_misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    erase_locked(it->second.back());
    return true;
  }

  // ---- recovery plumbing (persist/persist.hpp) ----
  // Replay re-enqueues WAL operations with their ORIGINAL tickets, so
  // ticket identity — and the endpoint ledger's most-recent-copy
  // resolution — survives a crash. None of these bump enqueue stats:
  // replayed traffic already counted when it first ran.

  /// Re-enqueue an insertion under its original ticket. The ticket
  /// counter is raised past `t`, so post-recovery insertions never
  /// collide with history.
  void restore_insert(ticket_t t, vertex_id u, vertex_id v, double w) {
    std::lock_guard<std::mutex> lk(mu_);
    if (t >= next_ticket_) next_ticket_ = t + 1;
    pending_pos_[t] = inserts_.size();
    inserts_.push_back(InsertOp{t, u, v, w});
    ++live_inserts_;
    uint64_t k = endpoint_key(u, v);
    by_endpoints_[k].push_back(t);
    key_of_[t] = k;
  }

  /// Re-enqueue an erase by original ticket (replay: the ticket was
  /// applied by an earlier replayed epoch, so this never annihilates).
  void restore_erase(ticket_t t) {
    std::lock_guard<std::mutex> lk(mu_);
    erase_locked(t, /*count=*/false);
  }

  /// Raise the ticket counter to at least `floor` (recovery restores
  /// the checkpoint's counter so erased-then-forgotten tickets are
  /// never reissued).
  void restore_ticket_floor(ticket_t floor) {
    std::lock_guard<std::mutex> lk(mu_);
    if (floor > next_ticket_) next_ticket_ = floor;
  }

  /// The next ticket enqueue_insert would hand out (checkpoints record
  /// it as the restore floor).
  ticket_t next_ticket() const {
    std::lock_guard<std::mutex> lk(mu_);
    return next_ticket_;
  }

  Drained drain() {
    std::lock_guard<std::mutex> lk(mu_);
    Drained d;
    d.inserts.reserve(live_inserts_);
    for (const InsertOp& op : inserts_) {
      if (op.ticket != kNoTicket) d.inserts.push_back(op);
    }
    d.erases = std::move(erases_);
    inserts_.clear();
    pending_pos_.clear();
    erases_.clear();
    erase_set_.clear();
    live_inserts_ = 0;
    return d;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return live_inserts_ + erases_.size();
  }

 private:
  static uint64_t endpoint_key(vertex_id u, vertex_id v) {
    if (u > v) std::swap(u, v);
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  bool erase_locked(ticket_t t, bool count = true) {
    if (count && stats_)
      stats_->erases_enqueued.fetch_add(1, std::memory_order_relaxed);
    // Capture the ledger's endpoints while dropping the entry (one
    // lookup for both): a queued erase of an applied ticket carries
    // them into the drained batch.
    vertex_id eu = kNoVertex, ev = kNoVertex;
    if (auto kit = key_of_.find(t); kit != key_of_.end()) {
      eu = static_cast<vertex_id>(kit->second >> 32);
      ev = static_cast<vertex_id>(kit->second & 0xffffffffu);
      auto bucket = by_endpoints_.find(kit->second);
      auto& tickets = bucket->second;
      tickets.erase(std::find(tickets.begin(), tickets.end(), t));
      if (tickets.empty()) by_endpoints_.erase(bucket);
      key_of_.erase(kit);
    }
    auto it = pending_pos_.find(t);
    if (it != pending_pos_.end()) {
      inserts_[it->second].ticket = kNoTicket;  // tombstone
      pending_pos_.erase(it);
      --live_inserts_;
      if (count && stats_)
        stats_->coalesced_pairs.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!erase_set_.insert(t).second) {
      if (count && stats_)
        stats_->duplicate_erases.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    erases_.push_back(EraseOp{t, eu, ev});
    return true;
  }

  mutable std::mutex mu_;
  ticket_t next_ticket_ = 0;
  std::vector<InsertOp> inserts_;
  std::unordered_map<ticket_t, size_t> pending_pos_;
  std::vector<EraseOp> erases_;
  std::unordered_set<ticket_t> erase_set_;
  // Endpoint ledger: live (not yet erased) insertions by normalized
  // (u, v); survives drain() so applied edges stay resolvable.
  std::unordered_map<uint64_t, std::vector<ticket_t>> by_endpoints_;
  std::unordered_map<ticket_t, uint64_t> key_of_;
  size_t live_inserts_ = 0;
  EngineStats* stats_;
};

}  // namespace dynsld::engine
