// Update front-end: a thread-safe mutation queue that coalesces
// pending operations before they reach the shards.
//
// Clients get a ticket per insertion and erase by ticket, so an edge's
// identity is stable from the moment it is enqueued even though the
// shard-level handle only exists after the flush that applies it.
// Coalescing rules, applied under the queue lock:
//
//   - erase(t) while insert(t) is still pending annihilates both (the
//     edge never existed as far as the shards are concerned) — the
//     common churn pattern of short-lived edges costs zero shard work;
//   - a second erase of the same pending ticket is dropped;
//   - insert tickets are unique, so inserts never merge.
//
// drain() hands the writer everything pending in one atomic cut. An
// erase can therefore only reference a ticket applied by an *earlier*
// epoch: an insert/erase pair inside one cut has already annihilated.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/stats.hpp"
#include "graph/types.hpp"

namespace dynsld::engine {

using ticket_t = uint64_t;
inline constexpr ticket_t kNoTicket = static_cast<ticket_t>(-1);

class MutationQueue {
 public:
  struct InsertOp {
    ticket_t ticket;
    vertex_id u, v;
    double w;
  };

  struct Drained {
    std::vector<InsertOp> inserts;  // enqueue order
    std::vector<ticket_t> erases;   // enqueue order, deduplicated
    size_t size() const { return inserts.size() + erases.size(); }
    bool empty() const { return inserts.empty() && erases.empty(); }
  };

  explicit MutationQueue(EngineStats* stats = nullptr) : stats_(stats) {}

  ticket_t enqueue_insert(vertex_id u, vertex_id v, double w) {
    std::lock_guard<std::mutex> lk(mu_);
    ticket_t t = next_ticket_++;
    pending_pos_[t] = inserts_.size();
    inserts_.push_back(InsertOp{t, u, v, w});
    ++live_inserts_;
    if (stats_) stats_->inserts_enqueued.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  /// Returns false when the erase annihilated a pending insert (nothing
  /// will reach the shards), true when it was queued for the next flush.
  bool enqueue_erase(ticket_t t) {
    std::lock_guard<std::mutex> lk(mu_);
    if (stats_) stats_->erases_enqueued.fetch_add(1, std::memory_order_relaxed);
    auto it = pending_pos_.find(t);
    if (it != pending_pos_.end()) {
      inserts_[it->second].ticket = kNoTicket;  // tombstone
      pending_pos_.erase(it);
      --live_inserts_;
      if (stats_) stats_->coalesced_pairs.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!erase_set_.insert(t).second) {
      if (stats_) stats_->duplicate_erases.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    erases_.push_back(t);
    return true;
  }

  Drained drain() {
    std::lock_guard<std::mutex> lk(mu_);
    Drained d;
    d.inserts.reserve(live_inserts_);
    for (const InsertOp& op : inserts_) {
      if (op.ticket != kNoTicket) d.inserts.push_back(op);
    }
    d.erases = std::move(erases_);
    inserts_.clear();
    pending_pos_.clear();
    erases_.clear();
    erase_set_.clear();
    live_inserts_ = 0;
    return d;
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return live_inserts_ + erases_.size();
  }

 private:
  mutable std::mutex mu_;
  ticket_t next_ticket_ = 0;
  std::vector<InsertOp> inserts_;
  std::unordered_map<ticket_t, size_t> pending_pos_;
  std::vector<ticket_t> erases_;
  std::unordered_set<ticket_t> erase_set_;
  size_t live_inserts_ = 0;
  EngineStats* stats_;
};

}  // namespace dynsld::engine
