#include "engine/broker.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "parallel/par.hpp"

namespace dynsld::engine {

namespace {

/// Monotone max-store (publishes can arrive out of order; see
/// subscription.cpp for the same idiom on the subscriber side).
void store_max(std::atomic<uint64_t>& a, uint64_t e) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < e && !a.compare_exchange_weak(cur, e,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
  }
}

/// Elapsed ns between two steady_clock points (0 when not after).
uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                    std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

QueryBroker::QueryBroker(const EpochManager& epochs, SubscriptionHub& hub,
                         std::shared_ptr<EngineObs> obs, Options opt)
    : epochs_(epochs),
      hub_(hub),
      obs_(std::move(obs)),
      stats_(EngineObs::stats_handle(obs_)),
      opt_(opt) {
  if (opt_.queue_depth == 0) opt_.queue_depth = 1;
  last_epoch_ = epochs_.cur_epoch();
  // System subscription: publishes wake the dispatcher (AtLeastEpoch
  // waiters unpark, the standing view cache refreshes) without counting
  // as a user subscriber anywhere.
  hub_token_ = hub_.add_system([this](const EpochManager::Snap& s) {
    store_max(published_, s->epoch());
    nudge();
  });
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

QueryBroker::~QueryBroker() { shutdown(); }

void QueryBroker::set_rehydrator(Rehydrator fn) {
  std::lock_guard<std::mutex> lk(rehydrate_mu_);
  rehydrate_ = std::move(fn);
}

void QueryBroker::abort_waiters() {
  abort_waiters_.store(true, std::memory_order_release);
  nudge();
}

void QueryBroker::set_client_weight(uint64_t client, uint64_t weight) {
  if (obs_) obs_->clients.set_weight(client, weight);
}

std::future<ResultSet> QueryBroker::error_future(QueryErrorCode code) {
  std::promise<ResultSet> p;
  p.set_exception(std::make_exception_ptr(QueryError(code)));
  return p.get_future();
}

bool QueryBroker::push_chain(Request* first, Request* last) {
  // seq_cst CAS: totally ordered against the stopped_ flag (see the
  // header comment on the shutdown race).
  Request* h = intake_.load();
  do {
    last->next = h;
  } while (!intake_.compare_exchange_weak(h, first));
  return h == nullptr;
}

void QueryBroker::nudge() {
  // Briefly take mu_ so the notify cannot slip between the dispatcher's
  // predicate check and its sleep (lost-wakeup race) — the same idiom
  // as the service's nudge_writer().
  { std::lock_guard<std::mutex> lk(mu_); }
  cv_.notify_one();
}

void QueryBroker::finish_error(Request* r, QueryErrorCode code) {
  // Depth drops before the future resolves, so a client that observes
  // the result never reads a stale depth() afterwards.
  depth_.fetch_sub(1, std::memory_order_acq_rel);
  if (ClientStats* cs = r->client_stats) {
    cs->inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (code == QueryErrorCode::kDeadlineExceeded)
      cs->deadline_expired.fetch_add(1, std::memory_order_relaxed);
  }
  r->promise.set_exception(std::make_exception_ptr(QueryError(code)));
  if (r->req.on_complete) r->req.on_complete();
  delete r;
}

void QueryBroker::finish_ok(Request* r) {
  // End-to-end request latency: admission to fulfillment (the number a
  // client would measure around submit()...get()).
  if (obs_)
    obs_->broker_fulfill->record(
        elapsed_ns(r->submitted, std::chrono::steady_clock::now()));
  depth_.fetch_sub(1, std::memory_order_acq_rel);
  if (ClientStats* cs = r->client_stats) {
    cs->inflight.fetch_sub(1, std::memory_order_acq_rel);
    cs->fulfilled.fetch_add(1, std::memory_order_relaxed);
  }
  r->promise.set_value(std::move(r->out));
  if (r->req.on_complete) r->req.on_complete();
  delete r;
}

void QueryBroker::abort_intake() {
  Request* h = intake_.exchange(nullptr);
  while (h) {
    Request* next = h->next;
    if (stats_)
      stats_->broker_shutdown_aborted.fetch_add(1, std::memory_order_relaxed);
    finish_error(h, QueryErrorCode::kShutdown);
    h = next;
  }
}

std::future<ResultSet> QueryBroker::prepare(QueryRequest&& req, bool stopped,
                                            Request** out) {
  *out = nullptr;
  // Fast-fail paths resolve the future before returning, so the
  // completion hook — fired exactly once per request, after the future
  // is ready — fires here, on the submitting thread.
  auto fail = [&req](QueryErrorCode code) {
    std::future<ResultSet> fut = error_future(code);
    if (req.on_complete) req.on_complete();
    return fut;
  };
  if (stopped) return fail(QueryErrorCode::kShutdown);
  if (req.cancel.cancelled()) {
    if (stats_)
      stats_->broker_cancelled.fetch_add(1, std::memory_order_relaxed);
    return fail(QueryErrorCode::kCancelled);
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= req.deadline) {
    if (stats_)
      stats_->broker_deadline_expired.fetch_add(1, std::memory_order_relaxed);
    return fail(QueryErrorCode::kDeadlineExceeded);
  }
  if (req.queries.empty()) {
    // Nothing to execute: complete immediately at the relevant epoch —
    // UNLESS the request is an AtLeastEpoch barrier whose epoch has
    // not published yet (must park like any other request) or an AsOf
    // (must resolve the historical epoch on the dispatcher, where a
    // miss becomes kEpochUnavailable rather than a silent success).
    const auto* ae = std::get_if<AtLeastEpoch>(&req.consistency);
    if (!std::holds_alternative<AsOf>(req.consistency) &&
        (!ae || epochs_.cur_epoch() >= ae->epoch)) {
      ResultSet rs;
      const auto* p = std::get_if<Pinned>(&req.consistency);
      rs.epoch = p && p->snap ? p->snap->epoch() : epochs_.cur_epoch();
      std::promise<ResultSet> pr;
      pr.set_value(std::move(rs));
      std::future<ResultSet> fut = pr.get_future();
      if (req.on_complete) req.on_complete();
      return fut;
    }
  }

  // Admission control: respect the configured depth or reject now.
  // (Global check first: a lone client's quota equals the full depth,
  // so single-tenant traffic sees exactly the pre-QoS behavior.)
  size_t cur = depth_.load(std::memory_order_relaxed);
  do {
    if (cur >= opt_.queue_depth) {
      if (stats_)
        stats_->broker_admission_rejects.fetch_add(1,
                                                   std::memory_order_relaxed);
      return fail(QueryErrorCode::kAdmissionRejected);
    }
  } while (!depth_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel));

  // Per-client weighted quota (QoS): a client's in-flight share of the
  // queue is weight / total_weight, so a saturating tenant exhausts its
  // own slice and gets kAdmissionRejected while lighter tenants keep
  // their headroom. Client 0 (anonymous) and obs-less contexts skip
  // the table and contend only on the global depth.
  ClientStats* cs = nullptr;
  if (obs_ && req.client != 0) {
    cs = obs_->clients.get(req.client);
    const uint64_t total =
        std::max<uint64_t>(1, obs_->clients.total_weight());
    const uint64_t w = cs->weight.load(std::memory_order_relaxed);
    const uint64_t cap =
        std::max<uint64_t>(1, uint64_t(opt_.queue_depth) * w / total);
    uint64_t in = cs->inflight.load(std::memory_order_relaxed);
    do {
      if (in >= cap) {
        depth_.fetch_sub(1, std::memory_order_acq_rel);  // undo admission
        cs->quota_rejected.fetch_add(1, std::memory_order_relaxed);
        if (stats_)
          stats_->broker_quota_rejects.fetch_add(1,
                                                 std::memory_order_relaxed);
        return fail(QueryErrorCode::kAdmissionRejected);
      }
    } while (!cs->inflight.compare_exchange_weak(in, in + 1,
                                                 std::memory_order_acq_rel));
    cs->submitted.fetch_add(1, std::memory_order_relaxed);
  }

  Request* r = new Request;
  r->req = std::move(req);
  r->submitted = now;
  r->client_stats = cs;
  std::future<ResultSet> fut = r->promise.get_future();
  if (stats_) {
    stats_->broker_submits.fetch_add(1, std::memory_order_relaxed);
    stats_->bump_max(stats_->broker_max_depth, cur + 1);
  }
  *out = r;
  return fut;
}

std::future<ResultSet> QueryBroker::submit(QueryRequest req) {
  Request* r = nullptr;
  std::future<ResultSet> fut = prepare(std::move(req), stopped_.load(), &r);
  if (!r) return fut;
  bool was_empty = push_chain(r, r);
  if (stopped_.load())
    abort_intake();  // lost the race with shutdown: resolve, don't dangle
  else if (was_empty)
    nudge();
  return fut;
}

std::vector<std::future<ResultSet>> QueryBroker::submit_batch(
    std::vector<QueryRequest> reqs) {
  std::vector<std::future<ResultSet>> futs;
  futs.reserve(reqs.size());
  Request* first = nullptr;
  Request* last = nullptr;
  const bool stopped = stopped_.load();
  for (QueryRequest& req : reqs) {
    Request* r = nullptr;
    futs.push_back(prepare(std::move(req), stopped, &r));
    if (!r) continue;
    // Build the local chain; one CAS splices the whole batch, so the
    // dispatcher is guaranteed to see it in a single cycle.
    if (!first) {
      first = last = r;
    } else {
      last->next = r;
      last = r;
    }
  }
  if (first) {
    bool was_empty = push_chain(first, last);
    if (stopped_.load())
      abort_intake();
    else if (was_empty)
      nudge();
  }
  return futs;
}

void QueryBroker::shutdown() {
  // Serialized: shutdown() is reachable from the service destructor
  // and from any thread via SldService::broker() — double-join and
  // double-drain must be impossible, not just unlikely.
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  stopped_.store(true);  // seq_cst: orders against submit's push + check
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher is gone: everything still queued or parked resolves
  // with kShutdown, so no future ever dangles.
  abort_intake();
  for (Request* r : parked_) {
    if (stats_)
      stats_->broker_shutdown_aborted.fetch_add(1, std::memory_order_relaxed);
    finish_error(r, QueryErrorCode::kShutdown);
  }
  parked_.clear();
  views_.clear();
  if (hub_token_) {
    hub_.remove(hub_token_);
    hub_token_ = 0;
  }
}

void QueryBroker::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    // Wake on submit nudges and publish signals; the interval bounds
    // how long parked deadlines can go unswept (micro-batch timer).
    cv_.wait_for(lk, opt_.interval, [&] {
      return stop_ || intake_.load() != nullptr ||
             abort_waiters_.load(std::memory_order_acquire) ||
             published_.load(std::memory_order_acquire) > last_epoch_;
    });
    if (stop_) break;
    if (intake_.load() == nullptr && parked_.empty() &&
        !abort_waiters_.load(std::memory_order_acquire) &&
        published_.load(std::memory_order_acquire) <= last_epoch_)
      continue;
    lk.unlock();
    dispatch_cycle();
    lk.lock();
  }
}

void QueryBroker::dispatch_cycle() {
  // Drain the intake in one exchange and restore FIFO order.
  std::vector<Request*> ready;
  {
    Request* h = intake_.exchange(nullptr);
    for (Request* r = h; r; r = r->next) ready.push_back(r);
    std::reverse(ready.begin(), ready.end());
  }

  EpochManager::Snap cur = epochs_.acquire();
  last_epoch_ = cur->epoch();
  ++cycle_;  // standing-cache age tick
  const auto now = std::chrono::steady_clock::now();
  obs::ScopedSpan cycle_span(obs_ ? &obs_->trace : nullptr, "broker.cycle",
                             cycle_, obs_ ? obs_->broker_cycle : nullptr);

  // Intake wait: admission to dispatch pickup, for the freshly drained
  // requests (ready holds exactly those at this point).
  if (obs_) {
    for (Request* r : ready)
      obs_->broker_intake_wait->record(elapsed_ns(r->submitted, now));
  }

  // Unpark AtLeastEpoch waiters the epoch (or their deadline/token)
  // released; the classify pass below sorts out which is which.
  {
    std::vector<Request*> still;
    still.reserve(parked_.size());
    for (Request* r : parked_) {
      const auto* ae = std::get_if<AtLeastEpoch>(&r->req.consistency);
      bool satisfied = !ae || cur->epoch() >= ae->epoch;
      if (satisfied || r->req.cancel.cancelled() || now >= r->req.deadline) {
        if (obs_) obs_->broker_park->record(elapsed_ns(r->parked_at, now));
        ready.push_back(r);
      } else {
        still.push_back(r);
      }
    }
    parked_.swap(still);
  }

  // Classify: expire / cancel / park without executing; group the rest
  // by (snapshot, tau) ACROSS clients.
  std::map<std::pair<const EngineSnapshot*, double>, size_t> index;
  std::vector<Group> groups;
  for (Request* r : ready) {
    if (r->req.cancel.cancelled()) {
      if (stats_)
        stats_->broker_cancelled.fetch_add(1, std::memory_order_relaxed);
      finish_error(r, QueryErrorCode::kCancelled);
      continue;
    }
    if (now >= r->req.deadline) {
      if (stats_)
        stats_->broker_deadline_expired.fetch_add(1,
                                                  std::memory_order_relaxed);
      finish_error(r, QueryErrorCode::kDeadlineExceeded);
      continue;
    }
    EpochManager::Snap snap = cur;
    if (const auto* ae = std::get_if<AtLeastEpoch>(&r->req.consistency)) {
      if (cur->epoch() < ae->epoch) {  // fresh arrival, epoch not there yet
        r->parked_at = now;
        parked_.push_back(r);
        if (stats_)
          stats_->broker_epoch_waits.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    } else if (const auto* p = std::get_if<Pinned>(&r->req.consistency)) {
      if (p->snap) snap = p->snap;
    } else if (const auto* ao = std::get_if<AsOf>(&r->req.consistency)) {
      // Time travel: current epoch, then the in-memory retention ring,
      // then checkpoint rehydration; a miss everywhere is a typed
      // error, never a silently-wrong epoch. Rehydrated snapshots come
      // from an LRU keyed by epoch, so concurrent AsOf clients at one
      // epoch share a pointer — and therefore a (snapshot, tau) group.
      if (ao->epoch != cur->epoch()) {
        EpochManager::Snap hist = epochs_.at_epoch(ao->epoch);
        if (hist) {
          if (stats_)
            stats_->asof_retained.fetch_add(1, std::memory_order_relaxed);
        } else {
          Rehydrator fn;
          {
            std::lock_guard<std::mutex> lk(rehydrate_mu_);
            fn = rehydrate_;
          }
          if (fn) hist = fn(ao->epoch);
        }
        if (!hist) {
          if (stats_)
            stats_->asof_unavailable.fetch_add(1, std::memory_order_relaxed);
          finish_error(r, QueryErrorCode::kEpochUnavailable);
          continue;
        }
        snap = std::move(hist);
      }
    }
    r->out.epoch = snap->epoch();
    r->out.results.resize(r->req.queries.size());
    if (r->req.queries.empty()) {
      // Epoch barrier (empty AtLeastEpoch request): resolves with no
      // results the moment the awaited epoch is current.
      finish_ok(r);
      continue;
    }
    uint32_t joined = 0;
    for (uint32_t i = 0; i < r->req.queries.size(); ++i) {
      double tau = query_tau(r->req.queries[i]);
      auto [it, fresh] = index.try_emplace({snap.get(), tau}, groups.size());
      if (fresh) {
        Group g;
        g.snap = snap;
        g.tau = tau;
        g.current = snap.get() == cur.get();
        groups.push_back(std::move(g));
      }
      Group& g = groups[it->second];
      // Requests are classified one at a time, so one request's items
      // within a group form a contiguous run — joined counts runs.
      if (g.items.empty() || g.items.back().first != r) ++joined;
      g.items.emplace_back(r, i);
    }
    r->groups_left.store(joined, std::memory_order_relaxed);
  }

  if (!groups.empty()) {
    // Standing-cache lookups happen here, on the dispatcher thread;
    // the parallel phase below only reads the captured `prev` bases.
    uint64_t group_requests = 0;
    for (Group& g : groups) {
      if (g.current) {
        auto it = views_.find(g.tau);
        if (it != views_.end()) g.prev = it->second.view;
      }
      Request* prev_r = nullptr;
      for (const auto& [r, qi] : g.items) {
        if (r != prev_r) {
          ++group_requests;
          prev_r = r;
        }
      }
    }
    if (stats_) {
      stats_->broker_batches.fetch_add(1, std::memory_order_relaxed);
      stats_->broker_groups.fetch_add(groups.size(),
                                      std::memory_order_relaxed);
      stats_->broker_group_requests.fetch_add(group_requests,
                                              std::memory_order_relaxed);
    }

    // Execute the cross-client groups in parallel: one ThresholdView
    // per (epoch, tau) — refreshed incrementally from the standing
    // cache when possible — shared by every client in the group. A
    // request is fulfilled by whichever group finishes it last.
    par::parallel_for(
        0, groups.size(),
        [&](size_t gi) {
          Group& g = groups[gi];
          {
            // Resolve-only span: the shared (epoch, tau) view cost,
            // excluding the per-query execution fan-out below.
            obs::ScopedSpan resolve_span(obs_ ? &obs_->trace : nullptr,
                                         "broker.resolve", cycle_,
                                         obs_ ? obs_->broker_resolve
                                              : nullptr);
            g.view = g.prev ? ThresholdView::refreshed(g.prev, g.snap)
                            : std::make_shared<const ThresholdView>(g.snap,
                                                                    g.tau);
          }
          par::parallel_for(
              0, g.items.size(),
              [&](size_t j) {
                const auto& [r, qi] = g.items[j];
                r->out.results[qi] = g.view->run(r->req.queries[qi]);
              },
              /*grain=*/8);
          Request* prev_r = nullptr;
          for (const auto& [r, qi] : g.items) {
            if (r == prev_r) continue;
            prev_r = r;
            if (r->groups_left.fetch_sub(1, std::memory_order_acq_rel) == 1)
              finish_ok(r);
          }
        },
        /*grain=*/1);
  }

  // Cache maintenance: absorb this cycle's current-epoch views, evict
  // entries idle past kIdleEvictCycles (bounding per-publish refresh
  // work to actively queried taus), and carry the survivors to the
  // current epoch (the SubscribedView refresh-on-publish discipline —
  // clean shards make this near-free, and it keeps a live entry from
  // pinning superseded epochs).
  std::set<double> used;
  for (Group& g : groups) {
    if (!g.current) continue;
    views_[g.tau] = CachedView{g.view, cycle_};
    used.insert(g.tau);
  }
  for (auto it = views_.begin(); it != views_.end();) {
    CachedView& cv = it->second;
    if (cycle_ - cv.last_used > kIdleEvictCycles) {
      it = views_.erase(it);
      continue;
    }
    if (cv.view->epoch() != cur->epoch())
      cv.view = ThresholdView::refreshed(cv.view, cur);
    ++it;
  }
  // Hard cap on actively-used taus: on cycles that queried, drop
  // everything this cycle didn't touch once the cache overflows.
  if (!used.empty() && views_.size() > kMaxCachedTaus) {
    for (auto it = views_.begin(); it != views_.end();) {
      if (used.count(it->first))
        ++it;
      else
        it = views_.erase(it);
    }
  }

  // Drain-abort pass (abort_waiters): anything still parked after this
  // cycle's unpark sweep is cut loose with kShutdown — a server drain
  // must not wait on an epoch an idle engine will never publish. The
  // flag is consumed whether or not anyone was parked.
  if (abort_waiters_.exchange(false, std::memory_order_acq_rel) &&
      !parked_.empty()) {
    for (Request* r : parked_) {
      if (stats_)
        stats_->broker_drain_aborted.fetch_add(1, std::memory_order_relaxed);
      finish_error(r, QueryErrorCode::kShutdown);
    }
    parked_.clear();
  }
}

}  // namespace dynsld::engine
