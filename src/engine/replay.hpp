// Workload replay driver: recorded update traces plus a harness that
// replays them against an SldService under concurrent reader threads.
// Benchmarks drive this instead of hand-rolling loops (the examples
// keep inline loops on purpose — they demonstrate the raw ticket API);
// later PRs can load recorded production traces into the same Trace
// shape.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/sld_service.hpp"
#include "graph/types.hpp"

namespace dynsld::engine {

/// One recorded update in a replayable trace.
struct TraceOp {
  enum Kind : uint8_t { kInsert, kErase } kind;
  // kInsert: the edge. kErase: `ref` is the index of the trace op whose
  // insertion this erase kills (ticket binding happens at replay time).
  vertex_id u = 0, v = 0;
  double w = 0.0;
  uint32_t ref = 0;
};

/// A recorded update stream plus generators for the benchmark
/// workloads.
struct Trace {
  vertex_id num_vertices = 0;
  std::vector<TraceOp> ops;

  /// Number of kInsert ops (for reporting).
  size_t num_inserts() const;

  /// Sliding-window similarity stream (the intro's motivating
  /// workload): `window` live points in 3 drifting blobs; each step
  /// retires the oldest `per_step` points (erasing their edges) and
  /// admits as many new ones (inserting edges to all live points within
  /// the connect radius).
  static Trace sliding_window(int window, int steps, int per_step,
                              double connect_radius, uint64_t seed);

  /// Shard-friendly stream: `groups` independent vertex blocks of size
  /// `block`, random intra-block insert/erase churn, plus a fraction of
  /// cross-block edges. Aligning blocks with shard ranges makes this
  /// the scaling workload for the sharded backend.
  static Trace blocks(int groups, int block, int churn_ops,
                      double cross_fraction, uint64_t seed);
};

/// Knobs for one replay() run.
struct ReplayOptions {
  int reader_threads = 0;
  double tau = 0.5;          // threshold the readers query at
  size_t ops_per_flush = 64; // writer flushes every this many trace ops
  uint64_t query_seed = 1;
  /// Readers hold a ThresholdView per epoch and query it (the amortized
  /// read path); false re-resolves per call through the snapshot
  /// conveniences (the PR 1 behavior, kept for A/B benchmarking).
  bool amortize_views = true;
};

/// Aggregate timings/counts replay() hands back to the benchmarks.
struct ReplayReport {
  double wall_ms = 0.0;
  uint64_t ops_applied = 0;
  uint64_t epochs_published = 0;
  uint64_t reader_queries = 0;
  double updates_per_s = 0.0;
  double queries_per_s = 0.0;
};

/// Replay `trace` through `svc` (writer = calling thread, flushing every
/// ops_per_flush), with reader_threads issuing mixed threshold /
/// cluster-size / flat-clustering queries against epoch snapshots until
/// the writer finishes. The service must be fresh (no prior updates).
ReplayReport replay(const Trace& trace, SldService& svc,
                    const ReplayOptions& opt);

}  // namespace dynsld::engine
