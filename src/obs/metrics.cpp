#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace dynsld::obs {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Shard index of the calling thread: assigned round-robin on first
/// use, shared by every histogram in the process (one thread always
/// lands in the same shard slot, spreading writers without locks).
uint32_t this_thread_shard() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) %
      LatencyHistogram::kShards;
  return shard;
}

/// Raise a relaxed max register to at least `v`.
void relaxed_max(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint32_t LatencyHistogram::bucket_of(uint64_t v) {
  if (v < kSub) return static_cast<uint32_t>(v);
  int shift = std::bit_width(v) - 1 - kSubBits;
  if (shift > kMaxShift) return kBuckets - 1;
  uint32_t mantissa = static_cast<uint32_t>((v >> shift) & (kSub - 1));
  return kSub + static_cast<uint32_t>(shift) * kSub + mantissa;
}

uint64_t LatencyHistogram::bucket_lower(uint32_t idx) {
  if (idx < kSub) return idx;
  uint32_t shift = (idx - kSub) / kSub;
  uint64_t mantissa = (idx - kSub) % kSub;
  return (kSub + mantissa) << shift;
}

uint64_t LatencyHistogram::bucket_upper(uint32_t idx) {
  if (idx < kSub) return idx + 1;
  uint32_t shift = (idx - kSub) / kSub;
  uint64_t mantissa = (idx - kSub) % kSub;
  return (kSub + mantissa + 1) << shift;
}

void LatencyHistogram::record(uint64_t ns) {
  Shard& s = shards_[this_thread_shard()];
  s.count[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(ns, std::memory_order_relaxed);
  relaxed_max(s.max, ns);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  // Merge shard-major into one flat bucket array, then compact.
  std::array<uint64_t, kBuckets> merged{};
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    for (uint32_t b = 0; b < kBuckets; ++b) {
      uint64_t c = s.count[b].load(std::memory_order_relaxed);
      merged[b] += c;
      out.count += c;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > out.max) out.max = m;
  }
  for (uint32_t b = 0; b < kBuckets; ++b) {
    if (merged[b]) out.buckets.emplace_back(b, merged[b]);
  }
  return out;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Nearest-rank: the rank-th smallest sample, rank in [1, count].
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * count));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (const auto& [idx, c] : buckets) {
    if (cum + c >= rank) {
      // Interpolate inside the bucket; stays within [lower, upper).
      uint64_t lo = LatencyHistogram::bucket_lower(idx);
      uint64_t hi = LatencyHistogram::bucket_upper(idx);
      double frac = static_cast<double>(rank - cum) / static_cast<double>(c);
      return lo + frac * static_cast<double>(hi - lo - 1);
    }
    cum += c;
  }
  return static_cast<double>(max);  // relaxed-concurrent slack
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const Sample& s : counters) {
    if (s.name == name) return s.value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const Hist& h : histograms) {
    if (h.name == name) return &h.h;
  }
  return nullptr;
}

void MetricRegistry::add_counter(std::string name,
                                 const std::atomic<uint64_t>* c) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.emplace_back(std::move(name), c);
}

void MetricRegistry::add_gauge(std::string name,
                               std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void MetricRegistry::clear_gauges() {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_.clear();
}

LatencyHistogram* MetricRegistry::add_histogram(std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [n, h] : hists_) {
    if (n == name) return h.get();
  }
  hists_.emplace_back(std::move(name), std::make_unique<LatencyHistogram>());
  return hists_.back().second.get();
}

LatencyHistogram* MetricRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [n, h] : hists_) {
    if (n == name) return h.get();
  }
  return nullptr;
}

MetricsSnapshot MetricRegistry::scrape() const {
  MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
      out.counters.push_back({name, c->load(std::memory_order_relaxed)});
    out.gauges.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) out.gauges.push_back({name, fn()});
    out.histograms.reserve(hists_.size());
    for (const auto& [name, h] : hists_)
      out.histograms.push_back({name, h->snapshot()});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

}  // namespace dynsld::obs
