// Metrics: the engine's single scrape surface.
//
// Three metric kinds, one registry:
//
//   - counters: monotone relaxed atomics owned by whoever bumps them
//     (EngineStats registers every field here, so the hot paths keep
//     their one-fetch_add cost and the registry just reads them);
//   - gauges: point-in-time callbacks (queue depth, current epoch) —
//     evaluated at scrape, never stored;
//   - latency histograms: lock-free log-bucketed histograms for the
//     percentile questions counters cannot answer (flush-stage p99,
//     broker fulfillment p50).
//
// The histogram is HdrHistogram-shaped: values bucket by a power-of-two
// exponent plus kSubBits mantissa bits, so every bucket's width is at
// most 1/2^kSubBits of its lower bound (bounded relative error, ~6% at
// kSubBits = 4) across the full nanosecond range. Recording is one
// relaxed fetch_add into a per-thread shard — no locks, no CAS loops on
// the value path — and shards merge only at scrape time, so a writer
// never contends with a scraper and concurrent writers contend only
// when they hash to one shard.
//
// scrape() returns a plain MetricsSnapshot (names sorted, histograms
// merged) that the exposition layer (export.hpp) renders as JSON or
// Prometheus text. Scraping is read-only and safe concurrent with any
// amount of recording; counts are relaxed-consistent like EngineStats
// reports.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dynsld::obs {

/// Monotonic nanosecond clock (steady; the zero point is arbitrary but
/// fixed for the process). All span and histogram values are in these
/// units.
uint64_t now_ns();

/// A merged, immutable copy of one histogram at scrape time: total
/// count/sum/max plus the non-empty buckets in value order. Percentile
/// accessors interpolate inside the target bucket, so the estimate is
/// always within the (bounded-relative-width) bucket that holds the
/// true sample.
struct HistogramSnapshot {
  /// Samples recorded / their sum / the largest single value (all ns).
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// (bucket index, samples in it), ascending, empty buckets omitted.
  /// Bucket bounds are recovered via LatencyHistogram::bucket_lower /
  /// bucket_upper.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  /// Nearest-rank percentile estimate in ns (p in [0, 100]); 0 when
  /// empty. The estimate lies inside the bucket containing the
  /// rank-ceil(p/100*count) smallest sample.
  double percentile(double p) const;
  /// Convenience percentile accessors (ns).
  double p50() const { return percentile(50); }
  double p90() const { return percentile(90); }
  double p99() const { return percentile(99); }
  /// Mean recorded value in ns (0 when empty).
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Lock-free log-bucketed latency histogram (see the header comment).
/// record() is wait-free: one relaxed fetch_add into the calling
/// thread's shard (plus a relaxed max update). snapshot() merges the
/// shards into a HistogramSnapshot. Thread-safe in every combination.
class LatencyHistogram {
 public:
  /// Mantissa bits per power-of-two octave: each octave splits into
  /// 2^kSubBits buckets, bounding relative bucket width to 1/2^kSubBits.
  static constexpr int kSubBits = 4;
  /// Buckets below kSub record values exactly (width 1).
  static constexpr uint32_t kSub = 1u << kSubBits;
  /// Largest distinguished octave shift; values at/above the top bucket
  /// (~2^48 ns, > 3 days) clamp into it.
  static constexpr int kMaxShift = 43;
  /// Total bucket count of the fixed layout.
  static constexpr uint32_t kBuckets = kSub + (kMaxShift + 1) * kSub;
  /// Per-thread shard count (threads hash onto shards round-robin).
  static constexpr uint32_t kShards = 8;

  /// Record one value (ns). Wait-free, relaxed, callable from any
  /// thread concurrently with snapshot().
  void record(uint64_t ns);

  /// Merge every shard into an immutable snapshot (relaxed-consistent
  /// with concurrent recording, like a counter report).
  HistogramSnapshot snapshot() const;

  /// Bucket index of a value: identity below kSub, exponent-plus-
  /// mantissa above, clamped to the top bucket.
  static uint32_t bucket_of(uint64_t v);
  /// Smallest value landing in bucket `idx`.
  static uint64_t bucket_lower(uint32_t idx);
  /// One past the largest value landing in bucket `idx` (exclusive).
  static uint64_t bucket_upper(uint32_t idx);

 private:
  /// One thread-shard: cache-line aligned so shards never false-share.
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> count{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  std::array<Shard, kShards> shards_;
};

/// Everything the registry knows, frozen at one scrape: counter and
/// gauge samples plus merged histogram snapshots, each name-sorted.
/// The exposition layer (export.hpp) renders this; tests assert on it.
struct MetricsSnapshot {
  /// One named integer sample (a counter read or a gauge evaluation).
  struct Sample {
    std::string name;
    uint64_t value = 0;
  };
  /// One named histogram merge.
  struct Hist {
    std::string name;
    HistogramSnapshot h;
  };

  std::vector<Sample> counters;
  std::vector<Sample> gauges;
  std::vector<Hist> histograms;

  /// Value of the named counter, or 0 when absent (test convenience).
  uint64_t counter(std::string_view name) const;
  /// Snapshot of the named histogram, or null when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Named registration point for counters, gauges, and histograms — the
/// one scrape surface (see the header comment). Registration is
/// mutex-guarded and expected at setup time; scrape() may run from any
/// thread concurrently with recording. Counter/gauge storage stays with
/// the registrant and must outlive the registry's last scrape;
/// histograms are owned by the registry (stable addresses for the
/// lifetime of the registry).
class MetricRegistry {
 public:
  /// Register a counter by reference; the registry reads it (relaxed)
  /// at every scrape. `c` must outlive the registry's last scrape.
  void add_counter(std::string name, const std::atomic<uint64_t>* c);

  /// Register a gauge callback, evaluated at every scrape. Whatever the
  /// callback captures must outlive the registry's last scrape.
  void add_gauge(std::string name, std::function<uint64_t()> fn);

  /// Drop every registered gauge. For registrants whose gauge captures
  /// die before the registry does (SldService's gauges read the live
  /// service, but snapshots keep its registry alive longer): call this
  /// on the registrant's way out so a late scrape reads fewer gauges
  /// instead of dangling ones.
  void clear_gauges();

  /// Create (or return the existing) histogram under `name`. The
  /// pointer stays valid for the registry's lifetime — hot paths cache
  /// it and call record() with no registry involvement.
  LatencyHistogram* add_histogram(std::string name);

  /// The histogram registered under `name`, or null.
  LatencyHistogram* find_histogram(std::string_view name) const;

  /// Read every counter, evaluate every gauge, merge every histogram.
  /// Name-sorted; safe from any thread.
  MetricsSnapshot scrape() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, const std::atomic<uint64_t>*>> counters_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      hists_;
};

}  // namespace dynsld::obs
