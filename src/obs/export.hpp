// Exposition: render a MetricsSnapshot as JSON or Prometheus text, and
// run a periodic StatsSink that scrapes a registry on an interval and
// hands the rendering to a caller-supplied emitter (a log line, a
// file, an HTTP response buffer — the sink does not care).
//
// JSON shape (one object; histogram values in ns):
//
//   {
//     "counters":   {"engine.flushes": 12, ...},
//     "gauges":     {"broker.depth": 0, ...},
//     "histograms": {
//       "broker.fulfill": {"count": 960, "sum_ns": ..., "max_ns": ...,
//                          "mean_ns": ..., "p50_ns": ..., "p90_ns": ...,
//                          "p99_ns": ...,
//                          "buckets": [[upper_ns, count], ...]}}}
//
// Prometheus text: metric names are sanitized ([^a-zA-Z0-9_] -> '_')
// and prefixed "dynsld_"; counters/gauges are scalar samples,
// histograms render the standard cumulative _bucket{le="..."} series
// plus _sum and _count. Values stay in nanoseconds (documented in the
// # HELP line) — consumers scale, the engine does not guess.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace dynsld::obs {

/// Render a scrape as the JSON object described in the header comment.
std::string to_json(const MetricsSnapshot& m);

/// Render a scrape as Prometheus exposition text (see header comment).
std::string to_prometheus(const MetricsSnapshot& m);

/// Periodic reporter: scrapes `registry` every `interval`, renders in
/// the chosen format, and calls `emit` with the text (on the sink's
/// own thread). Destroy the sink before the registry (and before
/// whatever the registry's gauges capture — for an engine registry,
/// before the SldService). The destructor performs one final scrape so
/// short-lived processes still report their last state.
class StatsSink {
 public:
  /// Output format of each emission.
  enum class Format { kJson, kPrometheus };

  /// Construction-time knobs.
  struct Options {
    /// Scrape cadence.
    std::chrono::milliseconds interval{1000};
    /// Rendering handed to the emitter.
    Format format = Format::kJson;
  };

  /// Start the reporter thread (first emission after one interval).
  StatsSink(const MetricRegistry& registry,
            std::function<void(const std::string&)> emit, Options opt);
  /// Same, with default Options (overload, not a default argument — a
  /// nested struct's member initializers aren't usable as one inside
  /// the enclosing class).
  StatsSink(const MetricRegistry& registry,
            std::function<void(const std::string&)> emit)
      : StatsSink(registry, std::move(emit), Options{}) {}
  /// Stops the thread after one final scrape+emit.
  ~StatsSink();

  StatsSink(const StatsSink&) = delete;
  StatsSink& operator=(const StatsSink&) = delete;

  /// Scrape + emit immediately on the calling thread (handy at
  /// checkpoints and in tests; concurrent with the periodic thread).
  void flush_now() const;

 private:
  void loop();

  const MetricRegistry& registry_;
  std::function<void(const std::string&)> emit_;
  Options opt_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::thread thread_;
};

}  // namespace dynsld::obs
