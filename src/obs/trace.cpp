#include "obs/trace.hpp"

namespace dynsld::obs {

void TraceRing::record(const char* name, uint64_t tag, uint64_t start_ns,
                       uint64_t dur_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  ring_[head_ % ring_.size()] = SpanRecord{name, tag, start_ns, dur_ns};
  ++head_;
}

std::vector<SpanRecord> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SpanRecord> out;
  size_t n = head_ < ring_.size() ? static_cast<size_t>(head_) : ring_.size();
  out.reserve(n);
  // Oldest retained span first: when the ring has wrapped, that is the
  // slot head_ points at (the next overwrite victim).
  uint64_t first = head_ < ring_.size() ? 0 : head_ - ring_.size();
  for (uint64_t i = first; i < head_; ++i)
    out.push_back(ring_[i % ring_.size()]);
  return out;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return head_;
}

uint64_t ScopedSpan::stop() {
  if (open_) {
    open_ = false;
    dur_ns_ = now_ns() - start_ns_;
    if (ring_) ring_->record(name_, tag_, start_ns_, dur_ns_);
    if (hist_) hist_->record(dur_ns_);
  }
  return dur_ns_;
}

}  // namespace dynsld::obs
