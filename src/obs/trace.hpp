// Tracing: lightweight scoped spans in a bounded ring, plus the
// per-epoch stage breakdown (EpochTrace) the flush pipeline publishes
// with every snapshot.
//
// A span is four words — a static name, a tag (epoch or dispatch-cycle
// number), a start timestamp, and a duration — recorded when its scope
// closes. The ring is a fixed-capacity overwrite buffer guarded by one
// mutex: span recording happens at pipeline-stage granularity (a
// handful per flush or dispatch cycle, never per query), so a mutex
// costs nothing where it is used while keeping the scrape path — and
// TSan — trivially clean. The *hot* per-request measurements go to the
// lock-free histograms (metrics.hpp) instead; the ring is the "what
// happened recently, in order" debugging surface.
//
// Span taxonomy (tag in parentheses):
//   flush.drain / flush.apply / flush.shards / flush.cross /
//   flush.publish / flush.notify                      (epoch)
//   broker.cycle / broker.resolve                     (dispatch cycle)
//
// EpochTrace is the flush pipeline's stage record — queue drain,
// per-shard apply, dirty-shard snapshot rebuilds, cross-table rebuild —
// frozen into the published EngineSnapshot (EngineSnapshot::trace()),
// so any reader can ask "what did the epoch I am looking at cost to
// build". The publish and notify stages complete only after the
// snapshot is frozen; they are recorded to the ring and the flush
// histograms, not the embedded trace.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace dynsld::obs {

/// One closed span: static name, caller tag (epoch / cycle), start
/// timestamp and duration in ns (now_ns() clock).
struct SpanRecord {
  const char* name = nullptr;  ///< static string; never freed
  uint64_t tag = 0;            ///< epoch or dispatch-cycle number
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// Bounded overwrite ring of SpanRecords (see the header comment).
/// Thread-safe; recording at stage granularity, scraping rarely.
class TraceRing {
 public:
  /// Default span capacity (per ring, not per name).
  static constexpr size_t kDefaultCapacity = 4096;

  /// A ring holding the last `capacity` spans (older ones overwritten).
  explicit TraceRing(size_t capacity = kDefaultCapacity)
      : ring_(capacity ? capacity : 1) {}

  /// Append one span (oldest is overwritten once full).
  void record(const char* name, uint64_t tag, uint64_t start_ns,
              uint64_t dur_ns);

  /// The retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded (>= snapshot().size(); the difference is
  /// what the ring has overwritten).
  uint64_t total_recorded() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  uint64_t head_ = 0;  // total appended; next slot is head_ % size
};

/// RAII span: stamps start on construction, records into the ring (and
/// optionally a latency histogram) when the scope closes or stop() is
/// called. Null ring/histogram are tolerated no-ops, so call sites
/// never branch on whether observability is wired up.
class ScopedSpan {
 public:
  /// Open a span named `name` (static string) tagged `tag`; on close it
  /// lands in `ring` and, when given, its duration also records into
  /// `hist`.
  ScopedSpan(TraceRing* ring, const char* name, uint64_t tag,
             LatencyHistogram* hist = nullptr)
      : ring_(ring), hist_(hist), name_(name), tag_(tag),
        start_ns_(now_ns()) {}

  /// Closes the span if still open.
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close the span now; returns its duration in ns. Idempotent — later
  /// calls (and the destructor) return the first stop's duration.
  uint64_t stop();

  /// Discard the span: nothing is recorded (for scopes that turn out to
  /// be no-ops, like a flush that drained an empty queue).
  void cancel() { open_ = false; }

 private:
  TraceRing* ring_;
  LatencyHistogram* hist_;
  const char* name_;
  uint64_t tag_;
  uint64_t start_ns_;
  uint64_t dur_ns_ = 0;
  bool open_ = true;
};

/// Stage breakdown of one flush, frozen into the epoch it published
/// (EngineSnapshot::trace()). Durations are ns on the now_ns() clock;
/// stages absent from a flush (e.g. no cross churn) read 0.
struct EpochTrace {
  /// The epoch this flush published.
  uint64_t epoch = 0;
  /// Coalesced ops applied (the drained batch size).
  uint64_t ops = 0;
  /// Dirty shards whose dendrogram snapshot was rebuilt.
  int shards_rebuilt = 0;
  /// Queue drain + coalesce.
  uint64_t drain_ns = 0;
  /// Per-shard batch apply (parallel across shards).
  uint64_t apply_ns = 0;
  /// Dirty-shard snapshot rebuilds (parallel; includes clean reuse).
  uint64_t shards_ns = 0;
  /// Cross-edge view rebuild (0 when the cross table was untouched).
  uint64_t cross_ns = 0;

  /// Sum of the recorded stages (the in-lock flush cost; publish and
  /// notify land in the ring/histograms, not here).
  uint64_t total_ns() const {
    return drain_ns + apply_ns + shards_ns + cross_ns;
  }
};

}  // namespace dynsld::obs
