#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace dynsld::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  out += buf;
}

void append_samples(std::string& out, const char* key,
                    const std::vector<MetricsSnapshot::Sample>& samples) {
  out += '"';
  out += key;
  out += "\": {";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, s.name);
    out += ": ";
    append_u64(out, s.value);
  }
  out += '}';
}

std::string sanitize(const std::string& name) {
  std::string out = "dynsld_";
  for (char c : name)
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& m) {
  std::string out = "{";
  append_samples(out, "counters", m.counters);
  out += ", ";
  append_samples(out, "gauges", m.gauges);
  out += ", \"histograms\": {";
  bool first = true;
  for (const auto& h : m.histograms) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, h.name);
    out += ": {\"count\": ";
    append_u64(out, h.h.count);
    out += ", \"sum_ns\": ";
    append_u64(out, h.h.sum);
    out += ", \"max_ns\": ";
    append_u64(out, h.h.max);
    out += ", \"mean_ns\": ";
    append_double(out, h.h.mean());
    out += ", \"p50_ns\": ";
    append_double(out, h.h.p50());
    out += ", \"p90_ns\": ";
    append_double(out, h.h.p90());
    out += ", \"p99_ns\": ";
    append_double(out, h.h.p99());
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [idx, c] : h.h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += '[';
      append_u64(out, LatencyHistogram::bucket_upper(idx));
      out += ", ";
      append_u64(out, c);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& m) {
  std::string out;
  for (const auto& s : m.counters) {
    std::string n = sanitize(s.name);
    out += "# TYPE " + n + " counter\n" + n + " ";
    append_u64(out, s.value);
    out += '\n';
  }
  for (const auto& s : m.gauges) {
    std::string n = sanitize(s.name);
    out += "# TYPE " + n + " gauge\n" + n + " ";
    append_u64(out, s.value);
    out += '\n';
  }
  for (const auto& h : m.histograms) {
    std::string n = sanitize(h.name);
    out += "# HELP " + n + " latency histogram (nanoseconds)\n";
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (const auto& [idx, c] : h.h.buckets) {
      cum += c;
      out += n + "_bucket{le=\"";
      append_u64(out, LatencyHistogram::bucket_upper(idx));
      out += "\"} ";
      append_u64(out, cum);
      out += '\n';
    }
    out += n + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.h.count);
    out += '\n';
    out += n + "_sum ";
    append_u64(out, h.h.sum);
    out += '\n';
    out += n + "_count ";
    append_u64(out, h.h.count);
    out += '\n';
  }
  return out;
}

StatsSink::StatsSink(const MetricRegistry& registry,
                     std::function<void(const std::string&)> emit,
                     Options opt)
    : registry_(registry), emit_(std::move(emit)), opt_(opt) {
  if (opt_.interval.count() <= 0) opt_.interval = std::chrono::milliseconds(1);
  thread_ = std::thread([this] { loop(); });
}

StatsSink::~StatsSink() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
  flush_now();  // final report: short-lived processes still emit once
}

void StatsSink::flush_now() const {
  MetricsSnapshot snap = registry_.scrape();
  emit_(opt_.format == Format::kJson ? to_json(snap) : to_prometheus(snap));
}

void StatsSink::loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, opt_.interval, [this] { return stop_; })) break;
    lk.unlock();
    flush_now();
    lk.lock();
  }
}

}  // namespace dynsld::obs
